// End-to-end tests of the router pipeline, flow control and delivery.
#include <gtest/gtest.h>

#include <memory>

#include "core/rair_policy.h"
#include "sim_test_util.h"
#include "traffic/generator.h"

namespace rair {
namespace {

using testutil::ScriptedSource;

/// Head flits pay 3 router cycles + 1 link cycle per router, plus the
/// initial NIC->router link; tails trail by numFlits-1 cycles.
Cycle expectedZeroLoadLatency(int hops, int numFlits) {
  return static_cast<Cycle>(4 * hops + 5 + (numFlits - 1));
}

TEST(NetworkPipeline, SingleFlitZeroLoadLatency) {
  Mesh m(4, 4);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  Simulator sim(m, rm, testutil::fastConfig(), policy, 2);
  // (0,0) -> (3,0): 3 hops, same row.
  sim.addSource(std::make_unique<ScriptedSource>(
      std::vector<ScriptedSource::Event>{{10, m.nodeAt({0, 0}),
                                          m.nodeAt({3, 0}), 0, 1}}));
  const auto r = sim.run();
  EXPECT_TRUE(r.fullyDrained);
  ASSERT_EQ(r.stats.app(0).totalLatency.count(), 1u);
  EXPECT_EQ(r.stats.appApl(0),
            static_cast<double>(expectedZeroLoadLatency(3, 1)));
  EXPECT_EQ(r.stats.app(0).hops.mean(), 4.0);  // 4 routers traversed
}

TEST(NetworkPipeline, FiveFlitPacketAddsSerialization) {
  Mesh m(4, 4);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  Simulator sim(m, rm, testutil::fastConfig(), policy, 2);
  sim.addSource(std::make_unique<ScriptedSource>(
      std::vector<ScriptedSource::Event>{{10, m.nodeAt({0, 0}),
                                          m.nodeAt({3, 0}), 0, 5}}));
  const auto r = sim.run();
  ASSERT_EQ(r.stats.app(0).totalLatency.count(), 1u);
  EXPECT_EQ(r.stats.appApl(0),
            static_cast<double>(expectedZeroLoadLatency(3, 5)));
}

TEST(NetworkPipeline, DiagonalRoute) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  Simulator sim(m, rm, testutil::fastConfig(), policy, 2);
  sim.addSource(std::make_unique<ScriptedSource>(
      std::vector<ScriptedSource::Event>{{0, m.nodeAt({1, 1}),
                                          m.nodeAt({5, 6}), 0, 1}}));
  const auto r = sim.run();
  ASSERT_EQ(r.stats.app(0).totalLatency.count(), 1u);
  // 9 hops minimal; adaptive routing must stay minimal.
  EXPECT_EQ(r.stats.app(0).hops.mean(), 10.0);
  EXPECT_EQ(r.stats.appApl(0),
            static_cast<double>(expectedZeroLoadLatency(9, 1)));
}

TEST(NetworkPipeline, AllRoutingAlgorithmsDeliverMinimally) {
  Mesh m(8, 8);
  const auto rm = RegionMap::quadrants(m);
  for (RoutingKind kind :
       {RoutingKind::Xy, RoutingKind::LocalAdaptive, RoutingKind::Dbar}) {
    RoundRobinPolicy policy;
    auto cfg = testutil::fastConfig();
    cfg.routing = kind;
    Simulator sim(m, rm, cfg, policy, 4);
    sim.addSource(std::make_unique<ScriptedSource>(
        std::vector<ScriptedSource::Event>{
            {0, m.nodeAt({0, 0}), m.nodeAt({7, 7}), 0, 5},
            {0, m.nodeAt({7, 0}), m.nodeAt({0, 7}), 1, 1},
            {3, m.nodeAt({4, 4}), m.nodeAt({4, 5}), 3, 5}}));
    const auto r = sim.run();
    EXPECT_TRUE(r.fullyDrained);
    EXPECT_EQ(r.packetsDelivered, 3u);
    EXPECT_EQ(r.stats.app(0).hops.mean(), 15.0);  // 14 hops -> 15 routers
    EXPECT_EQ(r.stats.app(1).hops.mean(), 15.0);
    EXPECT_EQ(r.stats.app(3).hops.mean(), 2.0);
  }
}

TEST(NetworkPipeline, PacketConservationUnderLoad) {
  Mesh m(8, 8);
  const auto rm = RegionMap::quadrants(m);
  RoundRobinPolicy policy;
  auto cfg = testutil::fastConfig();
  cfg.measureCycles = 3'000;
  Simulator sim(m, rm, cfg, policy, 4);
  for (AppId a = 0; a < 4; ++a) {
    AppTrafficSpec spec;
    spec.app = a;
    spec.injectionRate = 0.15;
    spec.intraFraction = 0.7;
    spec.interFraction = 0.3;
    sim.addSource(std::make_unique<RegionalizedSource>(
        m, rm, spec, 1000 + static_cast<std::uint64_t>(a)));
  }
  const auto r = sim.run();
  EXPECT_TRUE(r.fullyDrained);
  EXPECT_GT(r.packetsCreated, 1000u);
  // Drained means every measured packet arrived; the ledger may still
  // hold drain-phase packets, so compare measured counts via stats.
  EXPECT_EQ(r.stats.measuredInFlight(), 0u);
  for (AppId a = 0; a < 4; ++a)
    EXPECT_GT(r.stats.app(a).totalLatency.count(), 100u);
}

TEST(NetworkPipeline, DeterministicAcrossRuns) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  auto once = [&] {
    RoundRobinPolicy policy;
    auto cfg = testutil::fastConfig();
    Simulator sim(m, rm, cfg, policy, 2);
    AppTrafficSpec spec;
    spec.app = 0;
    spec.injectionRate = 0.2;
    spec.intraFraction = 0.5;
    spec.interFraction = 0.5;
    sim.addSource(std::make_unique<RegionalizedSource>(m, rm, spec, 42));
    AppTrafficSpec spec2 = spec;
    spec2.app = 1;
    sim.addSource(std::make_unique<RegionalizedSource>(m, rm, spec2, 43));
    return sim.run();
  };
  const auto r1 = once();
  const auto r2 = once();
  EXPECT_EQ(r1.packetsCreated, r2.packetsCreated);
  EXPECT_EQ(r1.packetsDelivered, r2.packetsDelivered);
  EXPECT_DOUBLE_EQ(r1.stats.overallApl(), r2.stats.overallApl());
}

TEST(NetworkPipeline, NoDeadlockNearSaturation) {
  // Heavy adversarial cross-traffic with adaptive routing: the Duato
  // escape VCs must keep the network deadlock-free (the watchdog aborts
  // the process otherwise).
  Mesh m(8, 8);
  const auto rm = RegionMap::quadrants(m);
  RoundRobinPolicy policy;
  auto cfg = testutil::fastConfig();
  cfg.measureCycles = 4'000;
  Simulator sim(m, rm, cfg, policy, 5);
  sim.addSource(std::make_unique<AdversarialSource>(m, 4, 0.45, 7));
  for (AppId a = 0; a < 4; ++a) {
    AppTrafficSpec spec;
    spec.app = a;
    spec.injectionRate = 0.2;
    spec.intraFraction = 0.6;
    spec.interFraction = 0.4;
    spec.interPattern = PatternKind::Transpose;
    sim.addSource(std::make_unique<RegionalizedSource>(
        m, rm, spec, 99 + static_cast<std::uint64_t>(a)));
  }
  const auto r = sim.run();
  EXPECT_GT(r.packetsDelivered, 5000u);
}

TEST(NetworkPipeline, RairPartitionRunsAllPolicies) {
  // The regional/global VC tagging must not break any policy.
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  auto cfg = testutil::fastConfig();
  cfg.net.rairPartition = true;
  RairPolicy rair;
  RoundRobinPolicy rr;
  const std::array<const ArbiterPolicy*, 2> policies = {&rair, &rr};
  for (const ArbiterPolicy* policy : policies) {
    Simulator sim(m, rm, cfg, *policy, 2);
    for (AppId a = 0; a < 2; ++a) {
      AppTrafficSpec spec;
      spec.app = a;
      spec.injectionRate = 0.15;
      spec.intraFraction = 0.8;
      spec.interFraction = 0.2;
      sim.addSource(std::make_unique<RegionalizedSource>(
          m, rm, spec, 5 + static_cast<std::uint64_t>(a)));
    }
    const auto r = sim.run();
    EXPECT_TRUE(r.fullyDrained) << policy->name();
    EXPECT_GT(r.packetsDelivered, 500u) << policy->name();
  }
}

TEST(NetworkPipeline, MultiClassTraffic) {
  Mesh m(4, 4);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  auto cfg = testutil::fastConfig();
  cfg.net.numClasses = 2;
  cfg.net.vcsPerClass = 4;
  Simulator sim(m, rm, cfg, policy, 2);
  sim.addSource(std::make_unique<ScriptedSource>(
      std::vector<ScriptedSource::Event>{
          {0, 0, 15, 0, 1, MsgClass::Request},
          {0, 15, 0, 1, 5, MsgClass::Reply},
          {2, 5, 10, 0, 5, MsgClass::Request}}));
  const auto r = sim.run();
  EXPECT_TRUE(r.fullyDrained);
  EXPECT_EQ(r.packetsDelivered, 3u);
}

TEST(NetworkPipeline, DeferredInjection) {
  Mesh m(4, 4);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  Simulator sim(m, rm, testutil::fastConfig(), policy, 2);
  sim.injectAt(100, 0, 15, 0, MsgClass::Request, 1);
  const auto r = sim.run();
  EXPECT_EQ(r.packetsDelivered, 1u);
  ASSERT_EQ(r.stats.app(0).totalLatency.count(), 1u);
  // Created exactly at cycle 100: zero-load latency for 6 hops.
  EXPECT_EQ(r.stats.appApl(0), static_cast<double>(4 * 6 + 5));
}

TEST(NetworkPipeline, DeliveryHookSynthesizesReplies) {
  Mesh m(4, 4);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  auto cfg = testutil::fastConfig();
  cfg.net.numClasses = 2;
  Simulator sim(m, rm, cfg, policy, 2);
  int replies = 0;
  sim.setDeliveryHook([&](const Packet& p, InjectionSink& sink) {
    if (p.msgClass == MsgClass::Request) {
      ++replies;
      sim.injectAt(sink.now() + 6, p.dst, p.src, p.app, MsgClass::Reply,
                   kLongPacketFlits);
    }
  });
  sim.addSource(std::make_unique<ScriptedSource>(
      std::vector<ScriptedSource::Event>{{0, 0, 15, 0, 1,
                                          MsgClass::Request}}));
  const auto r = sim.run();
  EXPECT_EQ(replies, 1);
  EXPECT_EQ(r.packetsDelivered, 2u);
}

TEST(NetworkPipeline, QuiescentAfterDrain) {
  Mesh m(4, 4);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  Simulator sim(m, rm, testutil::fastConfig(), policy, 2);
  sim.addSource(std::make_unique<ScriptedSource>(
      std::vector<ScriptedSource::Event>{{0, 0, 15, 0, 5}}));
  const auto r = sim.run();
  EXPECT_TRUE(r.fullyDrained);
  EXPECT_TRUE(sim.network().quiescent());
}

}  // namespace
}  // namespace rair
