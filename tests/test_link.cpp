#include "link/link_layer.h"

#include <gtest/gtest.h>

namespace rair {
namespace {

TEST(DelayPipe, DeliversAfterLatency) {
  DelayPipe<int> p(2);
  p.push(10, 42);
  EXPECT_FALSE(p.pop(10).has_value());
  EXPECT_FALSE(p.pop(11).has_value());
  auto v = p.pop(12);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_FALSE(p.pop(13).has_value());
}

TEST(DelayPipe, PreservesOrder) {
  DelayPipe<int> p(1);
  p.push(0, 1);
  p.push(1, 2);
  p.push(2, 3);
  EXPECT_EQ(p.pop(5).value(), 1);
  EXPECT_EQ(p.pop(5).value(), 2);
  EXPECT_EQ(p.pop(5).value(), 3);
  EXPECT_FALSE(p.pop(5).has_value());
}

TEST(DelayPipe, SizeAndEmpty) {
  DelayPipe<int> p(1);
  EXPECT_TRUE(p.empty());
  p.push(0, 7);
  EXPECT_EQ(p.size(), 1u);
  (void)p.pop(1);
  EXPECT_TRUE(p.empty());
}

TEST(IdealLink, FlitAndCreditChannelsAreIndependent) {
  IdealLink link(1);
  Flit f;
  f.pkt = 9;
  link.sendFlit(0, f, 2);
  link.sendCredit(0, 3);

  auto flit = link.recvFlit(1);
  ASSERT_TRUE(flit.has_value());
  EXPECT_EQ(flit->flit.pkt, 9u);
  EXPECT_EQ(flit->vc, 2);

  auto credit = link.recvCredit(1);
  ASSERT_TRUE(credit.has_value());
  EXPECT_EQ(credit->vc, 3);
  EXPECT_TRUE(link.idle());
}

TEST(IdealLink, NotVisibleBeforeLatency) {
  IdealLink link(1);
  Flit f;
  link.sendFlit(5, f, 0);
  EXPECT_FALSE(link.recvFlit(5).has_value());
  EXPECT_TRUE(link.recvFlit(6).has_value());
}

}  // namespace
}  // namespace rair
