// ObserverSet: the simulator's dynamic observer list. Attach/detach
// ordering, the absence of a slot-count ceiling, dispatch of all three
// callbacks through a live simulation, the deprecated setDeliveryObserver
// shim, and the delivery-hook fallback that reverts a sharded simulator
// to single-threaded stepping.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"
#include "sim/simulator.h"
#include "snapshot/buffer.h"

namespace rair {
namespace {

/// Appends its id to a shared log on every callback.
struct TaggedObserver final : SimObserver {
  TaggedObserver(int id, std::vector<int>& log) : id(id), log(&log) {}
  void onCycleBegin(Cycle) override { log->push_back(id); }
  int id;
  std::vector<int>* log;
};

TEST(ObserverSet, FiresInAttachmentOrderWithoutSlotCeiling) {
  std::vector<int> log;
  // Eight observers: double the old fixed four-slot array.
  std::vector<TaggedObserver> obs;
  obs.reserve(8);
  for (int i = 0; i < 8; ++i) obs.emplace_back(i, log);

  ObserverSet set;
  EXPECT_TRUE(set.empty());
  for (auto& o : obs) set.attach(&o);
  EXPECT_EQ(set.size(), 8u);

  set.notifyCycleBegin(0);
  EXPECT_EQ(log, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ObserverSet, DetachPreservesOrderOfTheRest) {
  std::vector<int> log;
  std::vector<TaggedObserver> obs;
  obs.reserve(5);
  for (int i = 0; i < 5; ++i) obs.emplace_back(i, log);

  ObserverSet set;
  for (auto& o : obs) set.attach(&o);

  EXPECT_TRUE(set.detach(&obs[2]));
  EXPECT_FALSE(set.detach(&obs[2]));  // already gone
  EXPECT_FALSE(set.attached(&obs[2]));
  EXPECT_EQ(set.size(), 4u);

  set.notifyCycleBegin(0);
  EXPECT_EQ(log, (std::vector<int>{0, 1, 3, 4}));

  // Re-attaching appends at the end.
  set.attach(&obs[2]);
  log.clear();
  set.notifyCycleBegin(1);
  EXPECT_EQ(log, (std::vector<int>{0, 1, 3, 4, 2}));

  set.clear();
  EXPECT_TRUE(set.empty());
}

// ---- Dispatch through a live simulation -----------------------------------

constexpr double kHalfSat = 0.38195418397913583;

ScenarioSpec smallSpec(const Mesh& mesh, const RegionMap& regions) {
  return ScenarioSpec(mesh, regions)
      .withScheme(schemeRaRair())
      .withApps(scenarios::twoAppInterRegion(
          0.5, scenarios::kLowLoadFraction * kHalfSat,
          scenarios::kHighLoadFraction * kHalfSat))
      .withSeed(7)
      .withFastWindows();
}

/// Counts every callback; records the cycle bounds seen.
struct CountingObserver final : SimObserver {
  void onCycleBegin(Cycle now) override {
    ++begins;
    lastBegin = now;
  }
  void onCycleEnd(Cycle now) override {
    ++ends;
    lastEnd = now;
  }
  void onDelivery(const Packet& p) override {
    ++deliveries;
    lastHops = p.hops;
  }
  int begins = 0, ends = 0, deliveries = 0;
  Cycle lastBegin = 0, lastEnd = 0;
  std::uint16_t lastHops = 0;
};

TEST(ObserverSet, SimulatorDispatchesAllThreeCallbacks) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  AssembledScenario as = assembleScenario(smallSpec(mesh, regions));

  CountingObserver counter;
  as.sim->observers().attach(&counter);
  as.sim->begin();
  for (int i = 0; i < 500; ++i) as.sim->stepCycle();

  EXPECT_EQ(counter.begins, 500);
  EXPECT_EQ(counter.ends, 500);
  EXPECT_EQ(counter.lastBegin, 499u);
  EXPECT_EQ(counter.lastEnd, 499u);
  EXPECT_GT(counter.deliveries, 0);
  EXPECT_GT(counter.lastHops, 0);

  // Detached observers stop firing.
  EXPECT_TRUE(as.sim->observers().detach(&counter));
  as.sim->stepCycle();
  EXPECT_EQ(counter.begins, 500);
}

TEST(ObserverSet, DeliveryHookRevertsShardedSimulatorToLegacyStepping) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const ScenarioSpec spec = smallSpec(mesh, regions);

  // Reference: plain single-threaded run.
  AssembledScenario legacy = assembleScenario(spec);
  legacy.sim->begin();
  for (int i = 0; i < 2000; ++i) legacy.sim->stepCycle();
  snapshot::Writer wl;
  legacy.sim->save(wl);

  // Sharded simulator with a no-op delivery hook installed: the hook
  // forces the fallback (hooks may create packets mid-delivery, which the
  // staged replay cannot reproduce), and the run must still match the
  // reference byte for byte.
  AssembledScenario sharded =
      assembleScenario(ScenarioSpec(spec).withThreads(4));
  sharded.sim->setDeliveryHook([](const Packet&, InjectionSink&) {});
  EXPECT_FALSE(sharded.sim->snapshotSupported());
  sharded.sim->begin();
  for (int i = 0; i < 2000; ++i) sharded.sim->stepCycle();
  snapshot::Writer ws;
  sharded.sim->save(ws);

  EXPECT_TRUE(wl.payload() == ws.payload());
}

}  // namespace
}  // namespace rair
