#include "routing/routing.h"

#include <gtest/gtest.h>

#include <map>

namespace rair {
namespace {

/// Congestion stub with programmable per-(node,dir) free counts.
class FakeCongestion final : public CongestionView {
 public:
  void set(NodeId n, Dir d, int free) { local_[{n, d}] = free; }
  void setAgg(NodeId n, Dir d, int hops, int value) {
    agg_[{n, d, hops}] = value;
  }
  int freeVcsThrough(NodeId n, Dir d) const override {
    const auto it = local_.find({n, d});
    return it == local_.end() ? 0 : it->second;
  }
  int aggregatedFree(NodeId n, Dir d, int hops) const override {
    const auto it = agg_.find({n, d, hops});
    if (it != agg_.end()) return it->second;
    return freeVcsThrough(n, d) * hops;  // default: uniform along the path
  }

 private:
  std::map<std::tuple<NodeId, Dir>, int> local_;
  std::map<std::tuple<NodeId, Dir, int>, int> agg_;
};

Flit mkHead(NodeId src, NodeId dst) {
  Flit f;
  f.src = src;
  f.dst = dst;
  f.type = FlitType::Head;
  return f;
}

TEST(Routing, CandidatesForEjection) {
  Mesh m(8, 8);
  XyRouting xy;
  const auto r = xy.computeCandidates(m, 5, mkHead(3, 5));
  EXPECT_TRUE(r.ejecting);
  EXPECT_EQ(r.numAdaptive, 0);
}

TEST(Routing, CandidatesAreMinimal) {
  Mesh m(8, 8);
  LocalAdaptiveRouting la;
  const NodeId src = m.nodeAt({2, 2});
  const NodeId dst = m.nodeAt({5, 6});
  const auto r = la.computeCandidates(m, src, mkHead(src, dst));
  EXPECT_FALSE(r.ejecting);
  ASSERT_EQ(r.numAdaptive, 2);
  EXPECT_EQ(r.adaptiveDirs[0], Dir::East);
  EXPECT_EQ(r.adaptiveDirs[1], Dir::South);
  EXPECT_EQ(r.escapeDir, Dir::East);  // XY: X dimension first
}

TEST(Routing, EscapeIsXDimensionFirst) {
  Mesh m(8, 8);
  XyRouting xy;
  // Only Y offset remains -> escape along Y.
  const NodeId src = m.nodeAt({4, 2});
  const NodeId dst = m.nodeAt({4, 6});
  const auto r = xy.computeCandidates(m, src, mkHead(src, dst));
  EXPECT_EQ(r.escapeDir, Dir::South);
  ASSERT_EQ(r.numAdaptive, 1);
}

TEST(Routing, XySelectionCollapsesToOneDir) {
  Mesh m(8, 8);
  XyRouting xy;
  FakeCongestion view;
  const NodeId src = m.nodeAt({2, 2});
  const NodeId dst = m.nodeAt({5, 6});
  auto r = xy.computeCandidates(m, src, mkHead(src, dst));
  const Flit f = mkHead(src, dst);
  xy.orderBySelection(m, view, src, f, r);
  EXPECT_EQ(r.numAdaptive, 1);
  EXPECT_EQ(r.adaptiveDirs[0], Dir::East);
}

TEST(Routing, LocalAdaptivePrefersFreerDirection) {
  Mesh m(8, 8);
  LocalAdaptiveRouting la;
  FakeCongestion view;
  const NodeId src = m.nodeAt({2, 2});
  const NodeId dst = m.nodeAt({5, 6});
  view.set(src, Dir::East, 1);
  view.set(src, Dir::South, 3);
  auto r = la.computeCandidates(m, src, mkHead(src, dst));
  const Flit f = mkHead(src, dst);
  la.orderBySelection(m, view, src, f, r);
  EXPECT_EQ(r.adaptiveDirs[0], Dir::South);
  // Flip the congestion; the preference flips.
  view.set(src, Dir::East, 5);
  r = la.computeCandidates(m, src, mkHead(src, dst));
  la.orderBySelection(m, view, src, f, r);
  EXPECT_EQ(r.adaptiveDirs[0], Dir::East);
}

TEST(Routing, LocalAdaptiveKeepsOrderOnTie) {
  Mesh m(8, 8);
  LocalAdaptiveRouting la;
  FakeCongestion view;
  const NodeId src = m.nodeAt({2, 2});
  const NodeId dst = m.nodeAt({5, 6});
  view.set(src, Dir::East, 2);
  view.set(src, Dir::South, 2);
  auto r = la.computeCandidates(m, src, mkHead(src, dst));
  const Flit f = mkHead(src, dst);
  la.orderBySelection(m, view, src, f, r);
  EXPECT_EQ(r.adaptiveDirs[0], Dir::East);
}

TEST(Routing, DbarHorizonStopsAtRegionBoundary) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  DbarRouting dbar(rm);
  FakeCongestion view;
  // Source (1,1) in app 0 (west half), destination (6,5) in app 1.
  const NodeId src = m.nodeAt({1, 1});
  const NodeId dst = m.nodeAt({6, 5});
  const Flit f = mkHead(src, dst);
  // East: 5 hops to dst column, but region extent east of (1,1) is 2
  // (columns 2,3) -> horizon 2. South: extent 6, dim distance 4 -> 4.
  view.setAgg(src, Dir::East, 2, 10);
  view.setAgg(src, Dir::South, 4, 9);
  auto r = dbar.computeCandidates(m, src, f);
  dbar.orderBySelection(m, view, src, f, r);
  EXPECT_EQ(r.adaptiveDirs[0], Dir::East);  // 10 > 9

  view.setAgg(src, Dir::East, 2, 3);
  r = dbar.computeCandidates(m, src, f);
  dbar.orderBySelection(m, view, src, f, r);
  EXPECT_EQ(r.adaptiveDirs[0], Dir::South);  // 9 > 3
}

TEST(Routing, DbarIgnoresCongestionBeyondBoundary) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  DbarRouting dbar(rm);
  FakeCongestion view;
  const NodeId src = m.nodeAt({1, 1});
  const NodeId dst = m.nodeAt({6, 5});
  const Flit f = mkHead(src, dst);
  // Set horizon-limited values equal; also set a huge 5-hop aggregate that
  // DBAR must NOT consult (it would see the other region's state).
  view.setAgg(src, Dir::East, 2, 5);
  view.setAgg(src, Dir::South, 4, 5);
  view.setAgg(src, Dir::East, 5, 100);
  auto r = dbar.computeCandidates(m, src, f);
  dbar.orderBySelection(m, view, src, f, r);
  // Tie at the region-bounded horizon: original (East-first) order kept.
  EXPECT_EQ(r.adaptiveDirs[0], Dir::East);
}

TEST(Routing, DbarUsesAtLeastOneHop) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  DbarRouting dbar(rm);
  FakeCongestion view;
  // At the boundary column (3,1): east neighbor is the other region, so
  // the extent is 0, but the selection must still look one hop ahead.
  const NodeId src = m.nodeAt({3, 1});
  const NodeId dst = m.nodeAt({6, 5});
  const Flit f = mkHead(src, dst);
  view.setAgg(src, Dir::East, 1, 8);
  view.setAgg(src, Dir::South, 3, 2);  // extent south = 6, dim dist = 4...
  view.setAgg(src, Dir::South, 4, 2);
  auto r = dbar.computeCandidates(m, src, f);
  dbar.orderBySelection(m, view, src, f, r);
  EXPECT_EQ(r.adaptiveDirs[0], Dir::East);
}

TEST(Routing, Factory) {
  Mesh m(4, 4);
  const auto rm = RegionMap::halves(m);
  EXPECT_STREQ(makeRouting(RoutingKind::Xy, nullptr)->name(), "XY");
  EXPECT_STREQ(makeRouting(RoutingKind::LocalAdaptive, nullptr)->name(),
               "Local");
  EXPECT_STREQ(makeRouting(RoutingKind::Dbar, &rm)->name(), "DBAR");
}

}  // namespace
}  // namespace rair
