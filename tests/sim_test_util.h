// Shared helpers for simulator-level tests.
#pragma once

#include <utility>
#include <vector>

#include "sim/simulator.h"
#include "traffic/source.h"

namespace rair::testutil {

/// Injects a fixed list of (cycle, packet) events.
class ScriptedSource final : public TrafficSource {
 public:
  struct Event {
    Cycle when;
    NodeId src, dst;
    AppId app = 0;
    std::uint16_t flits = 1;
    MsgClass cls = MsgClass::Request;
  };

  explicit ScriptedSource(std::vector<Event> events)
      : events_(std::move(events)) {}

  void tick(InjectionSink& sink) override {
    for (const auto& e : events_) {
      if (e.when == sink.now())
        sink.createPacket(e.src, e.dst, e.app, e.cls, e.flits);
    }
  }

 private:
  std::vector<Event> events_;
};

/// A SimConfig with short windows suitable for unit tests.
inline SimConfig fastConfig() {
  SimConfig cfg;
  cfg.warmupCycles = 0;
  cfg.measureCycles = 2'000;
  cfg.drainLimit = 50'000;
  cfg.progressTimeout = 20'000;
  return cfg;
}

}  // namespace rair::testutil
