// Golden-number equivalence: the allocation-free hot path (packet slab,
// ring-buffer VCs, incremental occupancy/state tracking) must reproduce
// the pre-refactor simulator bit-for-bit. The constants below were
// recorded from the seed implementation's fig09 fast-window campaign
// (campaignSeed = 1); any drift in arbitration order, RNG consumption or
// stats accounting shows up here as an exact-compare failure.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/builtin.h"
#include "campaign/runner.h"
#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"

namespace rair {
namespace {

/// Calibrated half-mesh saturation of the seed fig09 campaign
/// ("halves/halfSat" in its results file). Hard-coding it pins the cell
/// workloads without re-running the calibration bisection.
constexpr double kHalfSat = 0.38195418397913583;

ScenarioResult runFig09Cell(double p, const SchemeSpec& scheme,
                            std::uint64_t seed) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const auto apps = scenarios::twoAppInterRegion(
      p, scenarios::kLowLoadFraction * kHalfSat,
      scenarios::kHighLoadFraction * kHalfSat);
  return runScenario(ScenarioSpec(mesh, regions)
                         .withScheme(scheme)
                         .withApps(apps)
                         .withSeed(seed)
                         .withFastWindows());
}

TEST(Equivalence, CellSeedsMatchSeedCampaign) {
  EXPECT_EQ(campaign::cellSeed(1, 0), 10451216379200822465ull);
  EXPECT_EQ(campaign::cellSeed(1, 1), 13757245211066428519ull);
  EXPECT_EQ(campaign::cellSeed(1, 2), 17911839290282890590ull);
  EXPECT_EQ(campaign::cellSeed(1, 3), 8196980753821780235ull);
  EXPECT_EQ(campaign::cellSeed(1, 4), 8195237237126968761ull);
}

TEST(Equivalence, Fig09RoRrP0MatchesSeedImplementation) {
  const auto r = runFig09Cell(0.0, schemeRoRr(), 10451216379200822465ull);
  ASSERT_EQ(r.appApl.size(), 2u);
  EXPECT_EQ(r.appApl[0], 23.313518113299295);
  EXPECT_EQ(r.appApl[1], 29.36873761982563);
  EXPECT_EQ(r.meanApl, 28.725103050821176);
  EXPECT_EQ(r.run.cyclesRun, 22062u);
  EXPECT_EQ(r.run.packetsCreated, 85324u);
  EXPECT_EQ(r.run.packetsDelivered, 85224u);
  EXPECT_EQ(r.run.termination, Termination::Drained);
}

TEST(Equivalence, Fig09RaRairP100MatchesSeedImplementation) {
  const auto r = runFig09Cell(1.0, schemeRaRair(), 8042142155559163816ull);
  ASSERT_EQ(r.appApl.size(), 2u);
  EXPECT_EQ(r.appApl[0], 35.292608196093454);
  EXPECT_EQ(r.appApl[1], 37.077724857767421);
  EXPECT_EQ(r.meanApl, 36.895917305942007);
  EXPECT_EQ(r.run.cyclesRun, 22138u);
  EXPECT_EQ(r.run.packetsCreated, 85171u);
  EXPECT_EQ(r.run.packetsDelivered, 85040u);
  EXPECT_EQ(r.run.termination, Termination::Drained);
}

/// The first row of the fig09 grid (RO_RR, p in {0,25,50,75,100}) as its
/// own campaign: same campaignSeed and cell order as the full fig09, so
/// cells 0..4 derive the exact same seeds.
campaign::CampaignSpec fig09RoRrRow() {
  campaign::CampaignSpec spec;
  spec.name = "fig09trunc";
  spec.campaignSeed = 1;
  for (const int p : {0, 25, 50, 75, 100}) {
    campaign::CampaignCell cell;
    cell.key = "RO_RR/p" + std::to_string(p);
    cell.labels = {{"scheme", "RO_RR"}, {"p", std::to_string(p)}};
    cell.run = [p](const campaign::CellContext& ctx) {
      return runFig09Cell(p / 100.0, schemeRoRr(), ctx.seed);
    };
    spec.add(std::move(cell));
  }
  return spec;
}

std::vector<std::string> canonicalLines(
    const std::vector<campaign::CellRecord>& recs) {
  std::vector<std::string> lines;
  lines.reserve(recs.size());
  for (const auto& r : recs)
    lines.push_back(r.toJsonLine(/*includeVolatile=*/false));
  return lines;
}

TEST(Equivalence, RunnerResultsIndependentOfWorkerCount) {
  const campaign::CampaignSpec spec = fig09RoRrRow();

  campaign::RunnerOptions one;
  one.jobs = 1;
  const auto serial = campaign::runCampaign(spec, one);

  campaign::RunnerOptions four;
  four.jobs = 4;
  const auto parallel = campaign::runCampaign(spec, four);

  ASSERT_EQ(serial.records.size(), 5u);
  EXPECT_EQ(canonicalLines(serial.records), canonicalLines(parallel.records));

  // Spot-check the first cell against the recorded golden numbers — this
  // ties the runner path (cell seeding included) to the seed trajectory,
  // not merely to itself.
  const auto& p0 = serial.records[0];
  EXPECT_EQ(p0.key, "RO_RR/p0");
  EXPECT_EQ(p0.seed, 10451216379200822465ull);
  ASSERT_EQ(p0.appApl.size(), 2u);
  EXPECT_EQ(p0.appApl[0], 23.313518113299295);
  EXPECT_EQ(p0.appApl[1], 29.36873761982563);
  EXPECT_EQ(p0.cyclesRun, 22062u);
}

// ---- Fig. 12 (DPA, four quadrant apps) -----------------------------------

/// Fast-window calibrated loads of the fig12 campaign ("fig12/cal_a" and
/// "fig12/cal_b" in its results file, campaignSeed = 1). Hard-coding them
/// pins the workloads without re-running the saturation bisections.
constexpr double kFig12RatesA[4] = {0.070229165341078717, 0.05664346945403196,
                                    0.05664346945403196, 0.5679854733312848};
constexpr double kFig12RatesB[4] = {0.067957602041636811, 0.067957602041636811,
                                    0.066821820391915865, 0.5679854733312848};

ScenarioResult runFig12Cell(char scen, const SchemeSpec& scheme,
                            std::uint64_t seed) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::quadrants(mesh);
  auto apps = scen == 'a' ? scenarios::fourAppLowTowardHigh(0, 0)
                          : scenarios::fourAppHighTowardLow(0, 0);
  const double* rates = scen == 'a' ? kFig12RatesA : kFig12RatesB;
  for (std::size_t a = 0; a < 4; ++a) apps[a].injectionRate = rates[a];
  return runScenario(ScenarioSpec(mesh, regions)
                         .withScheme(scheme)
                         .withApps(std::move(apps))
                         .withSeed(seed)
                         .withFastWindows());
}

TEST(Equivalence, Fig12RaRairScenarioAMatchesRecordedGolden) {
  // Seed of cell index 6 (RA_RAIR/a) of the full fig12 campaign.
  const auto r = runFig12Cell('a', schemeRaRair(), 16184226688143867045ull);
  ASSERT_EQ(r.appApl.size(), 4u);
  EXPECT_EQ(r.appApl[0], 24.793486894360605);
  EXPECT_EQ(r.appApl[1], 21.615497076023392);
  EXPECT_EQ(r.appApl[2], 21.577321281840593);
  EXPECT_EQ(r.appApl[3], 34.977863377860075);
  EXPECT_EQ(r.meanApl, 31.979298232502522);
  EXPECT_EQ(r.run.cyclesRun, 22088u);
  EXPECT_EQ(r.run.packetsCreated, 88556u);
  EXPECT_EQ(r.run.packetsDelivered, 88428u);
  EXPECT_EQ(r.run.termination, Termination::Drained);
}

TEST(Equivalence, Fig12RunnerRowIndependentOfWorkerCount) {
  // The first two cells (RO_RR/a, RO_RR/b) of the full fig12 campaign:
  // same campaignSeed and cell order, so seeds derive identically.
  campaign::CampaignSpec spec;
  spec.name = "fig12trunc";
  spec.campaignSeed = 1;
  for (const char scen : {'a', 'b'}) {
    campaign::CampaignCell cell;
    cell.key = std::string("RO_RR/") + scen;
    cell.labels = {{"scheme", "RO_RR"}, {"scenario", std::string(1, scen)}};
    cell.run = [scen](const campaign::CellContext& ctx) {
      return runFig12Cell(scen, schemeRoRr(), ctx.seed);
    };
    spec.add(std::move(cell));
  }

  campaign::RunnerOptions one;
  one.jobs = 1;
  const auto serial = campaign::runCampaign(spec, one);
  campaign::RunnerOptions four;
  four.jobs = 4;
  const auto parallel = campaign::runCampaign(spec, four);

  ASSERT_EQ(serial.records.size(), 2u);
  EXPECT_EQ(canonicalLines(serial.records), canonicalLines(parallel.records));

  const auto& a = serial.records[0];
  EXPECT_EQ(a.key, "RO_RR/a");
  EXPECT_EQ(a.seed, 10451216379200822465ull);
  ASSERT_EQ(a.appApl.size(), 4u);
  EXPECT_EQ(a.appApl[0], 28.197831261571014);
  EXPECT_EQ(a.appApl[3], 31.845660433216558);
  EXPECT_EQ(a.cyclesRun, 22179u);
  EXPECT_EQ(a.packetsCreated, 88990u);

  const auto& b = serial.records[1];
  EXPECT_EQ(b.seed, 13757245211066428519ull);
  ASSERT_EQ(b.appApl.size(), 4u);
  EXPECT_EQ(b.appApl[0], 18.267169294037011);
  EXPECT_EQ(b.cyclesRun, 22050u);
}

// ---- Fig. 14 (six-app generic RNoC) --------------------------------------

/// Fast-window calibrated loads of the fig14 campaign ("sixapp/cal_UR",
/// campaignSeed = 1), uniform-random global traffic.
constexpr double kFig14Rates[6] = {0.078179636889125367, 0.62591033746705327,
                                   0.14999999999999999,  0.15635927377825073,
                                   0.23453891066737606,  0.62591033746705327};

ScenarioResult runFig14Cell(const SchemeSpec& scheme, std::uint64_t seed) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::sixRegions(mesh);
  const std::vector<double> rates(kFig14Rates, kFig14Rates + 6);
  const auto apps = scenarios::sixAppMixed(PatternKind::UniformRandom, rates);
  return runScenario(ScenarioSpec(mesh, regions)
                         .withScheme(scheme)
                         .withApps(apps)
                         .withSeed(seed)
                         .withFastWindows());
}

TEST(Equivalence, Fig14RaRairMatchesRecordedGolden) {
  // Seed of cell index 3 (RA_RAIR) of the full fig14 campaign.
  const auto r = runFig14Cell(schemeRaRair(), 8196980753821780235ull);
  ASSERT_EQ(r.appApl.size(), 6u);
  EXPECT_EQ(r.appApl[0], 21.290786948176585);
  EXPECT_EQ(r.appApl[1], 32.404580000000003);
  EXPECT_EQ(r.appApl[2], 21.113610657282894);
  EXPECT_EQ(r.appApl[3], 21.894479216819128);
  EXPECT_EQ(r.appApl[4], 22.057012113055183);
  EXPECT_EQ(r.appApl[5], 32.967497127653139);
  EXPECT_EQ(r.meanApl, 28.789471633416458);
  EXPECT_EQ(r.run.cyclesRun, 22051u);
  EXPECT_EQ(r.run.packetsCreated, 141596u);
  EXPECT_EQ(r.run.packetsDelivered, 141429u);
  EXPECT_EQ(r.run.termination, Termination::Drained);
}

TEST(Equivalence, Fig14RunnerRowIndependentOfWorkerCount) {
  // The first two cells (RO_RR, RA_DBAR) of the full fig14 campaign.
  campaign::CampaignSpec spec;
  spec.name = "fig14trunc";
  spec.campaignSeed = 1;
  for (const SchemeSpec& s : {schemeRoRr(), schemeRaDbar()}) {
    campaign::CampaignCell cell;
    cell.key = s.label;
    cell.labels = {{"scheme", s.label}};
    cell.run = [s](const campaign::CellContext& ctx) {
      return runFig14Cell(s, ctx.seed);
    };
    spec.add(std::move(cell));
  }

  campaign::RunnerOptions one;
  one.jobs = 1;
  const auto serial = campaign::runCampaign(spec, one);
  campaign::RunnerOptions four;
  four.jobs = 4;
  const auto parallel = campaign::runCampaign(spec, four);

  ASSERT_EQ(serial.records.size(), 2u);
  EXPECT_EQ(canonicalLines(serial.records), canonicalLines(parallel.records));

  const auto& rr = serial.records[0];
  EXPECT_EQ(rr.key, "RO_RR");
  EXPECT_EQ(rr.seed, 10451216379200822465ull);
  ASSERT_EQ(rr.appApl.size(), 6u);
  EXPECT_EQ(rr.appApl[0], 21.963269200190808);
  EXPECT_EQ(rr.appApl[5], 29.478742289754777);
  EXPECT_EQ(rr.cyclesRun, 22070u);
  EXPECT_EQ(rr.packetsCreated, 141684u);

  const auto& dbar = serial.records[1];
  EXPECT_EQ(dbar.key, "RA_DBAR");
  EXPECT_EQ(dbar.seed, 13757245211066428519ull);
  EXPECT_EQ(dbar.appApl[0], 21.960865415208399);
  EXPECT_EQ(dbar.cyclesRun, 22051u);
}

}  // namespace
}  // namespace rair
