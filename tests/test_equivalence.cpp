// Golden-number equivalence: the allocation-free hot path (packet slab,
// ring-buffer VCs, incremental occupancy/state tracking) must reproduce
// the pre-refactor simulator bit-for-bit. The constants below were
// recorded from the seed implementation's fig09 fast-window campaign
// (campaignSeed = 1); any drift in arbitration order, RNG consumption or
// stats accounting shows up here as an exact-compare failure.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "campaign/builtin.h"
#include "campaign/runner.h"
#include "scenarios/paper_scenarios.h"
#include "sim/scenario.h"

namespace rair {
namespace {

/// Calibrated half-mesh saturation of the seed fig09 campaign
/// ("halves/halfSat" in its results file). Hard-coding it pins the cell
/// workloads without re-running the calibration bisection.
constexpr double kHalfSat = 0.38195418397913583;

ScenarioResult runFig09Cell(double p, const SchemeSpec& scheme,
                            std::uint64_t seed) {
  Mesh mesh(8, 8);
  const RegionMap regions = RegionMap::halves(mesh);
  const auto apps = scenarios::twoAppInterRegion(
      p, scenarios::kLowLoadFraction * kHalfSat,
      scenarios::kHighLoadFraction * kHalfSat);
  return runScenario(ScenarioSpec(mesh, regions)
                         .withScheme(scheme)
                         .withApps(apps)
                         .withSeed(seed)
                         .withFastWindows());
}

TEST(Equivalence, CellSeedsMatchSeedCampaign) {
  EXPECT_EQ(campaign::cellSeed(1, 0), 10451216379200822465ull);
  EXPECT_EQ(campaign::cellSeed(1, 1), 13757245211066428519ull);
  EXPECT_EQ(campaign::cellSeed(1, 2), 17911839290282890590ull);
  EXPECT_EQ(campaign::cellSeed(1, 3), 8196980753821780235ull);
  EXPECT_EQ(campaign::cellSeed(1, 4), 8195237237126968761ull);
}

TEST(Equivalence, Fig09RoRrP0MatchesSeedImplementation) {
  const auto r = runFig09Cell(0.0, schemeRoRr(), 10451216379200822465ull);
  ASSERT_EQ(r.appApl.size(), 2u);
  EXPECT_EQ(r.appApl[0], 23.313518113299295);
  EXPECT_EQ(r.appApl[1], 29.36873761982563);
  EXPECT_EQ(r.meanApl, 28.725103050821176);
  EXPECT_EQ(r.run.cyclesRun, 22062u);
  EXPECT_EQ(r.run.packetsCreated, 85324u);
  EXPECT_EQ(r.run.packetsDelivered, 85224u);
  EXPECT_EQ(r.run.termination, Termination::Drained);
}

TEST(Equivalence, Fig09RaRairP100MatchesSeedImplementation) {
  const auto r = runFig09Cell(1.0, schemeRaRair(), 8042142155559163816ull);
  ASSERT_EQ(r.appApl.size(), 2u);
  EXPECT_EQ(r.appApl[0], 35.292608196093454);
  EXPECT_EQ(r.appApl[1], 37.077724857767421);
  EXPECT_EQ(r.meanApl, 36.895917305942007);
  EXPECT_EQ(r.run.cyclesRun, 22138u);
  EXPECT_EQ(r.run.packetsCreated, 85171u);
  EXPECT_EQ(r.run.packetsDelivered, 85040u);
  EXPECT_EQ(r.run.termination, Termination::Drained);
}

/// The first row of the fig09 grid (RO_RR, p in {0,25,50,75,100}) as its
/// own campaign: same campaignSeed and cell order as the full fig09, so
/// cells 0..4 derive the exact same seeds.
campaign::CampaignSpec fig09RoRrRow() {
  campaign::CampaignSpec spec;
  spec.name = "fig09trunc";
  spec.campaignSeed = 1;
  for (const int p : {0, 25, 50, 75, 100}) {
    campaign::CampaignCell cell;
    cell.key = "RO_RR/p" + std::to_string(p);
    cell.labels = {{"scheme", "RO_RR"}, {"p", std::to_string(p)}};
    cell.run = [p](std::uint64_t seed) {
      return runFig09Cell(p / 100.0, schemeRoRr(), seed);
    };
    spec.add(std::move(cell));
  }
  return spec;
}

std::vector<std::string> canonicalLines(
    const std::vector<campaign::CellRecord>& recs) {
  std::vector<std::string> lines;
  lines.reserve(recs.size());
  for (const auto& r : recs)
    lines.push_back(r.toJsonLine(/*includeVolatile=*/false));
  return lines;
}

TEST(Equivalence, RunnerResultsIndependentOfWorkerCount) {
  const campaign::CampaignSpec spec = fig09RoRrRow();

  campaign::RunnerOptions one;
  one.jobs = 1;
  const auto serial = campaign::runCampaign(spec, one);

  campaign::RunnerOptions four;
  four.jobs = 4;
  const auto parallel = campaign::runCampaign(spec, four);

  ASSERT_EQ(serial.records.size(), 5u);
  EXPECT_EQ(canonicalLines(serial.records), canonicalLines(parallel.records));

  // Spot-check the first cell against the recorded golden numbers — this
  // ties the runner path (cell seeding included) to the seed trajectory,
  // not merely to itself.
  const auto& p0 = serial.records[0];
  EXPECT_EQ(p0.key, "RO_RR/p0");
  EXPECT_EQ(p0.seed, 10451216379200822465ull);
  ASSERT_EQ(p0.appApl.size(), 2u);
  EXPECT_EQ(p0.appApl[0], 23.313518113299295);
  EXPECT_EQ(p0.appApl[1], 29.36873761982563);
  EXPECT_EQ(p0.cyclesRun, 22062u);
}

}  // namespace
}  // namespace rair
