#include "common/ring.h"

#include <gtest/gtest.h>

#include <deque>
#include <memory>
#include <string>

#include "common/rng.h"

namespace rair {
namespace {

TEST(RingQueue, StartsEmptyWithNoCapacity) {
  RingQueue<int> q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.capacity(), 0u);
}

TEST(RingQueue, ReserveRoundsUpToPowerOfTwo) {
  RingQueue<int> q;
  q.reserve(3);
  EXPECT_EQ(q.capacity(), 4u);
  q.reserve(4);
  EXPECT_EQ(q.capacity(), 4u);
  q.reserve(5);
  EXPECT_EQ(q.capacity(), 8u);
  // Shrinking reserves are ignored.
  q.reserve(1);
  EXPECT_EQ(q.capacity(), 8u);
}

TEST(RingQueue, FifoOrderAcrossTheIndexMask) {
  // Drive head_ around the full power-of-two array several times with the
  // queue partially full, so every push/pop index crosses the mask wrap.
  RingQueue<int> q;
  q.reserve(4);
  int pushed = 0;
  int popped = 0;
  for (int round = 0; round < 16; ++round) {
    while (q.size() < 3) q.push_back(pushed++);
    while (!q.empty()) {
      EXPECT_EQ(q.front(), popped);
      q.pop_front();
      ++popped;
    }
  }
  EXPECT_EQ(q.capacity(), 4u);  // never grew
  EXPECT_EQ(pushed, popped);
}

TEST(RingQueue, IndexingMatchesFifoPositionWhenWrapped) {
  RingQueue<int> q;
  q.reserve(4);
  // Advance head_ to 3 so elements 1..3 straddle the wrap boundary.
  for (int i = 0; i < 3; ++i) {
    q.push_back(i);
    q.pop_front();
  }
  for (int i = 0; i < 4; ++i) q.push_back(10 + i);
  ASSERT_EQ(q.size(), 4u);
  EXPECT_EQ(q.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(q[static_cast<std::size_t>(i)], 10 + i);
  EXPECT_EQ(q.front(), 10);
}

TEST(RingQueue, GrowWhileWrappedLinearizesElements) {
  // Fill to capacity with the stored window wrapped around the array end,
  // then push one more: regrow must copy elements out in FIFO order, not
  // raw slot order.
  RingQueue<int> q;
  q.reserve(8);
  for (int i = 0; i < 5; ++i) {
    q.push_back(i);
    q.pop_front();
  }
  for (int i = 0; i < 8; ++i) q.push_back(100 + i);  // head_ = 5, wrapped
  ASSERT_EQ(q.capacity(), 8u);
  q.push_back(108);  // forces regrow to 16 mid-wrap
  EXPECT_EQ(q.capacity(), 16u);
  ASSERT_EQ(q.size(), 9u);
  for (int i = 0; i < 9; ++i)
    EXPECT_EQ(q[static_cast<std::size_t>(i)], 100 + i);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(q.front(), 100 + i);
    q.pop_front();
  }
  EXPECT_TRUE(q.empty());
}

TEST(RingQueue, GrowFromEmptyDefaultsToEight) {
  RingQueue<int> q;
  q.push_back(1);
  EXPECT_EQ(q.capacity(), 8u);
}

TEST(RingQueue, ClearKeepsCapacity) {
  RingQueue<int> q;
  for (int i = 0; i < 20; ++i) q.push_back(i);
  const std::size_t cap = q.capacity();
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.capacity(), cap);
  q.push_back(7);
  EXPECT_EQ(q.front(), 7);
}

TEST(RingQueue, MoveOnlyPayloadSurvivesRegrow) {
  RingQueue<std::unique_ptr<int>> q;
  for (int i = 0; i < 12; ++i) q.push_back(std::make_unique<int>(i));
  for (int i = 0; i < 12; ++i) {
    ASSERT_NE(q.front(), nullptr);
    EXPECT_EQ(*q.front(), i);
    q.pop_front();
  }
}

// Property test: a long random push/pop/clear/reserve schedule behaves
// exactly like std::deque, across many grow-while-wrapped events.
TEST(RingQueue, RandomScheduleMatchesDeque) {
  Xoshiro256StarStar rng(0xD1CEu);
  for (int trial = 0; trial < 50; ++trial) {
    RingQueue<std::string> q;
    std::deque<std::string> model;
    int next = 0;
    for (int step = 0; step < 2000; ++step) {
      const std::uint64_t op = rng.below(100);
      if (op < 55) {
        const std::string v = std::to_string(next++);
        q.push_back(v);
        model.push_back(v);
      } else if (op < 95) {
        if (!model.empty()) {
          ASSERT_EQ(q.front(), model.front());
          q.pop_front();
          model.pop_front();
        }
      } else if (op < 98) {
        q.reserve(rng.below(64));
      } else {
        q.clear();
        model.clear();
      }
      ASSERT_EQ(q.size(), model.size());
      ASSERT_EQ(q.empty(), model.empty());
      if (!model.empty()) {
        // Spot-check a random FIFO position, plus both ends.
        const std::size_t i = rng.below(model.size());
        ASSERT_EQ(q[i], model[i]);
        ASSERT_EQ(q.front(), model.front());
        ASSERT_EQ(q[model.size() - 1], model.back());
      }
    }
  }
}

// The capacity invariant the hot paths rely on: a queue that has reached
// its high-water mark never reallocates below it again.
TEST(RingQueue, CapacityIsMonotone) {
  Xoshiro256StarStar rng(0xCAFEu);
  RingQueue<int> q;
  std::size_t maxCap = 0;
  for (int step = 0; step < 5000; ++step) {
    if (rng.chance(0.6)) {
      q.push_back(step);
    } else if (!q.empty()) {
      q.pop_front();
    }
    ASSERT_GE(q.capacity(), maxCap);
    maxCap = q.capacity();
    // Power-of-two capacity is what makes the mask indexing valid.
    ASSERT_EQ(q.capacity() & (q.capacity() - 1), 0u);
  }
}

}  // namespace
}  // namespace rair
