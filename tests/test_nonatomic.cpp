// Non-atomic VC allocation mode: packets queue back-to-back inside
// adaptive VC FIFOs (allocation requires credits for the whole packet;
// escape VCs stay atomic). See router/router.h for the deadlock argument.
#include <gtest/gtest.h>

#include "core/rair_policy.h"
#include "sim_test_util.h"
#include "traffic/generator.h"

namespace rair {
namespace {

using testutil::ScriptedSource;

SimConfig nonAtomicCfg() {
  auto cfg = testutil::fastConfig();
  cfg.net.atomicVcs = false;
  return cfg;
}

TEST(NonAtomicVcs, ZeroLoadLatencyUnchanged) {
  Mesh m(4, 4);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  Simulator sim(m, rm, nonAtomicCfg(), policy, 2);
  sim.addSource(std::make_unique<ScriptedSource>(
      std::vector<ScriptedSource::Event>{{10, m.nodeAt({0, 0}),
                                          m.nodeAt({3, 0}), 0, 1}}));
  const auto r = sim.run();
  // Same pipeline as atomic mode: 3 hops -> 4*3 + 5 cycles.
  EXPECT_EQ(r.stats.appApl(0), 17.0);
}

TEST(NonAtomicVcs, BackToBackShortPacketsShareAVc) {
  // A burst of single-flit packets between one src/dst pair: with one
  // adaptive VC they must still all be delivered (queued in the FIFO).
  Mesh m(4, 1);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  auto cfg = nonAtomicCfg();
  cfg.net.vcsPerClass = 2;  // 1 escape + 1 adaptive
  Simulator sim(m, rm, cfg, policy, 2);
  std::vector<ScriptedSource::Event> events;
  for (Cycle t = 0; t < 20; ++t) events.push_back({t, 0, 3, 0, 1});
  sim.addSource(std::make_unique<ScriptedSource>(events));
  const auto r = sim.run();
  EXPECT_TRUE(r.fullyDrained);
  EXPECT_EQ(r.packetsDelivered, 20u);
  // Pipelined delivery: the whole burst must take far less than 20
  // sequential zero-load traversals.
  EXPECT_LT(r.stats.app(0).totalLatency.max(), 100.0);
}

TEST(NonAtomicVcs, ConservationUnderLoad) {
  Mesh m(8, 8);
  const auto rm = RegionMap::quadrants(m);
  RoundRobinPolicy policy;
  auto cfg = nonAtomicCfg();
  cfg.measureCycles = 3'000;
  Simulator sim(m, rm, cfg, policy, 4);
  for (AppId a = 0; a < 4; ++a) {
    AppTrafficSpec spec;
    spec.app = a;
    spec.injectionRate = 0.2;
    spec.intraFraction = 0.6;
    spec.interFraction = 0.4;
    sim.addSource(std::make_unique<RegionalizedSource>(
        m, rm, spec, 31 + static_cast<std::uint64_t>(a)));
  }
  const auto r = sim.run();
  EXPECT_TRUE(r.fullyDrained);
  EXPECT_EQ(r.stats.measuredInFlight(), 0u);
  EXPECT_GT(r.packetsDelivered, 2000u);
}

TEST(NonAtomicVcs, NoDeadlockNearSaturationWithRair) {
  // The whole-packet-fit rule must keep the escape argument valid even
  // under adversarial pressure and RAIR prioritization.
  Mesh m(8, 8);
  const auto rm = RegionMap::quadrants(m);
  RairPolicy policy;
  auto cfg = nonAtomicCfg();
  cfg.net.rairPartition = true;
  cfg.measureCycles = 4'000;
  Simulator sim(m, rm, cfg, policy, 5);
  sim.addSource(std::make_unique<AdversarialSource>(m, 4, 0.4, 77));
  for (AppId a = 0; a < 4; ++a) {
    AppTrafficSpec spec;
    spec.app = a;
    spec.injectionRate = 0.15;
    spec.intraFraction = 0.5;
    spec.interFraction = 0.5;
    spec.interPattern = PatternKind::BitComplement;
    sim.addSource(std::make_unique<RegionalizedSource>(
        m, rm, spec, 131 + static_cast<std::uint64_t>(a)));
  }
  const auto r = sim.run();
  EXPECT_GT(r.packetsDelivered, 5000u);  // watchdog would abort on deadlock
}

TEST(NonAtomicVcs, DeterministicAcrossRuns) {
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  auto once = [&] {
    RoundRobinPolicy policy;
    Simulator sim(m, rm, nonAtomicCfg(), policy, 2);
    AppTrafficSpec spec;
    spec.app = 0;
    spec.injectionRate = 0.25;
    spec.intraFraction = 0.5;
    spec.interFraction = 0.5;
    sim.addSource(std::make_unique<RegionalizedSource>(m, rm, spec, 5));
    return sim.run();
  };
  const auto r1 = once();
  const auto r2 = once();
  EXPECT_DOUBLE_EQ(r1.stats.overallApl(), r2.stats.overallApl());
}

TEST(NonAtomicVcs, DeeperBuffersSustainThroughput) {
  // A hotspot's sustained throughput is ejection-link-limited, so deeper
  // buffers must deliver essentially the same packet count over a fixed
  // horizon (they add queueing capacity, not bandwidth) — a regression
  // guard against deeper buffers introducing pipeline bubbles.
  Mesh m(4, 4);
  const auto rm = RegionMap::halves(m);
  auto runWithDepth = [&](int depth) {
    RoundRobinPolicy policy;
    auto cfg = nonAtomicCfg();
    cfg.net.vcDepth = depth;
    cfg.measureCycles = 1'500;
    cfg.drainLimit = 3'000;
    Simulator sim(m, rm, cfg, policy, 2);
    AppTrafficSpec spec;
    spec.app = 0;
    spec.injectionRate = 0.9;  // far past saturation
    spec.intraFraction = 0.0;
    spec.interFraction = 1.0;
    spec.interPattern = PatternKind::Hotspot;
    sim.addSource(std::make_unique<RegionalizedSource>(m, rm, spec, 9));
    return sim.run().packetsDelivered;
  };
  const auto shallow = runWithDepth(5);
  const auto deep = runWithDepth(15);
  EXPECT_GT(deep, shallow * 9 / 10);
  EXPECT_LT(deep, shallow * 11 / 10);
}

}  // namespace
}  // namespace rair
