#include "packet/pool.h"

#include <gtest/gtest.h>

#include <vector>

namespace rair {
namespace {

TEST(PacketPool, AcquireAssignsDistinctLiveIds) {
  PacketPool pool(4);
  Packet& a = pool.acquire();
  Packet& b = pool.acquire();
  EXPECT_NE(a.id, b.id);
  EXPECT_EQ(pool.inFlight(), 2u);
  EXPECT_TRUE(pool.find(a.id) != nullptr);
  EXPECT_TRUE(pool.find(b.id) != nullptr);
}

TEST(PacketPool, ReleaseThenAcquireReusesSlotWithNewGeneration) {
  PacketPool pool(4);
  Packet& a = pool.acquire();
  const PacketId first = a.id;
  pool.release(first);
  EXPECT_EQ(pool.inFlight(), 0u);

  Packet& b = pool.acquire();
  // LIFO free list: the same slot comes back, under a fresh generation,
  // so the stale id no longer resolves.
  EXPECT_EQ(PacketPool::slotOf(b.id), PacketPool::slotOf(first));
  EXPECT_NE(PacketPool::generationOf(b.id), PacketPool::generationOf(first));
  EXPECT_EQ(pool.find(first), nullptr);
  EXPECT_NE(pool.find(b.id), nullptr);
}

TEST(PacketPool, AcquireResetsRecycledSlotState) {
  PacketPool pool(2);
  Packet& a = pool.acquire();
  a.src = 42;
  a.numFlits = 9;
  a.injectCycle = 1234;
  pool.release(a.id);
  Packet& b = pool.acquire();
  EXPECT_EQ(b.src, kInvalidNode);
  EXPECT_EQ(b.numFlits, 1);
  EXPECT_EQ(b.injectCycle, kNeverCycle);
}

TEST(PacketPool, GrowsBeyondInitialReservation) {
  PacketPool pool(2);
  std::vector<PacketId> ids;
  for (int i = 0; i < 100; ++i) ids.push_back(pool.acquire().id);
  EXPECT_EQ(pool.inFlight(), 100u);
  EXPECT_GE(pool.capacity(), 100u);
  for (const PacketId id : ids) {
    ASSERT_NE(pool.find(id), nullptr);
    pool.release(id);
  }
  EXPECT_TRUE(pool.empty());
}

TEST(PacketPool, SteadyChurnDoesNotGrowCapacity) {
  // Release/acquire churn at constant occupancy must recycle slots
  // instead of growing the slab — the allocation-free steady state the
  // simulator relies on.
  PacketPool pool(8);
  std::vector<PacketId> live;
  for (int i = 0; i < 8; ++i) live.push_back(pool.acquire().id);
  for (int round = 0; round < 1000; ++round) {
    const std::size_t at = static_cast<std::size_t>(round) % live.size();
    pool.release(live[at]);
    live[at] = pool.acquire().id;
  }
  EXPECT_EQ(pool.capacity(), 8u);
  EXPECT_EQ(pool.inFlight(), 8u);
}

TEST(PacketPool, MaxLiveBoundIsEnforced) {
  PacketPool pool(2, /*maxLive=*/3);
  pool.acquire();
  pool.acquire();
  pool.acquire();
  EXPECT_DEATH(pool.acquire(), "");
}

TEST(PacketPool, GetOnStaleIdDies) {
  PacketPool pool(2);
  const PacketId id = pool.acquire().id;
  pool.release(id);
  EXPECT_DEATH(pool.get(id), "");
}

}  // namespace
}  // namespace rair
