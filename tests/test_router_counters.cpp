// Router instrumentation counters: native/foreign grant accounting and
// escape-path usage.
#include <gtest/gtest.h>

#include "core/rair_policy.h"
#include "scenarios/paper_scenarios.h"
#include "sim_test_util.h"
#include "traffic/generator.h"

namespace rair {
namespace {

using testutil::ScriptedSource;

TEST(RouterCounters, CountFlitsTraversed) {
  Mesh m(4, 1);
  const auto rm = RegionMap::halves(m);
  RoundRobinPolicy policy;
  Simulator sim(m, rm, testutil::fastConfig(), policy, 2);
  // One 5-flit packet across the row: every router moves 5 flits.
  sim.addSource(std::make_unique<ScriptedSource>(
      std::vector<ScriptedSource::Event>{{0, 0, 3, 0, 5}}));
  sim.run();
  std::uint64_t total = 0;
  for (NodeId n = 0; n < m.numNodes(); ++n)
    total += sim.network().router(n).counters().flitsTraversed;
  // 4 routers on the path x 5 flits.
  EXPECT_EQ(total, 20u);
}

TEST(RouterCounters, NativeForeignClassification) {
  Mesh m(4, 1);
  const auto rm = RegionMap::halves(m);  // app0: nodes 0,1; app1: 2,3
  RoundRobinPolicy policy;
  Simulator sim(m, rm, testutil::fastConfig(), policy, 2);
  // App 0 packet from node 0 to node 3: native at routers 0-1, foreign at
  // routers 2-3.
  sim.addSource(std::make_unique<ScriptedSource>(
      std::vector<ScriptedSource::Event>{{0, 0, 3, 0, 1}}));
  sim.run();
  const auto& net = sim.network();
  EXPECT_EQ(net.router(0).counters().saGrantsNative, 1u);
  EXPECT_EQ(net.router(0).counters().saGrantsForeign, 0u);
  EXPECT_EQ(net.router(1).counters().saGrantsNative, 1u);
  EXPECT_EQ(net.router(2).counters().saGrantsForeign, 1u);
  EXPECT_EQ(net.router(2).counters().saGrantsNative, 0u);
  EXPECT_EQ(net.router(3).counters().saGrantsForeign, 1u);
}

TEST(RouterCounters, VaGrantsMatchPacketsTraversed) {
  Mesh m(4, 4);
  const auto rm = RegionMap::quadrants(m);
  RoundRobinPolicy policy;
  Simulator sim(m, rm, testutil::fastConfig(), policy, 4);
  AppTrafficSpec spec;
  spec.app = 0;
  spec.injectionRate = 0.1;
  spec.intraFraction = 0.5;
  spec.interFraction = 0.5;
  sim.addSource(std::make_unique<RegionalizedSource>(m, rm, spec, 17));
  const auto r = sim.run();
  std::uint64_t vaGrants = 0, hops = 0;
  for (NodeId n = 0; n < m.numNodes(); ++n) {
    const auto& c = sim.network().router(n).counters();
    vaGrants += c.vaGrantsNative + c.vaGrantsForeign;
    hops += c.flitsTraversed;
  }
  // Every router a packet traverses performs exactly one VA grant for it,
  // so the grants must cover at least the measured packets' router visits
  // (unmeasured warmup/drain packets add more).
  EXPECT_GT(vaGrants, 0u);
  EXPECT_GE(vaGrants,
            static_cast<std::uint64_t>(r.stats.overall().hops.sum()));
  EXPECT_GE(hops, vaGrants);  // every grant moves at least one flit
}

TEST(RouterCounters, EscapeUsedUnderPressure) {
  // Drive the network hard: some packets must fall back to escape VCs.
  Mesh m(8, 8);
  const auto rm = RegionMap::quadrants(m);
  RoundRobinPolicy policy;
  auto cfg = testutil::fastConfig();
  cfg.measureCycles = 2'000;
  Simulator sim(m, rm, cfg, policy, 5);
  sim.addSource(std::make_unique<AdversarialSource>(m, 4, 0.4, 23));
  sim.run();
  std::uint64_t escapes = 0;
  for (NodeId n = 0; n < m.numNodes(); ++n)
    escapes += sim.network().router(n).counters().escapeAllocations;
  EXPECT_GT(escapes, 0u);
}

TEST(RouterCounters, RairShiftsGrantSharesTowardForeign) {
  // Under RAIR with a thin foreign flow crossing a busy region, the
  // foreign share of VA grants at the region's routers must not shrink
  // versus round-robin (priority can only help it).
  Mesh m(8, 8);
  const auto rm = RegionMap::halves(m);
  auto foreignShare = [&](const SchemeSpec& scheme) {
    auto cfg = testutil::fastConfig();
    cfg.measureCycles = 4'000;
    cfg.routing = scheme.routing;
    cfg.net.rairPartition = scheme.needsRairPartition();
    const auto policy = makePolicy(scheme, {0.05, 0.3});
    Simulator sim(m, rm, cfg, *policy, 2);
    const auto apps = scenarios::twoAppInterRegion(1.0, 0.04, 0.26);
    std::uint64_t seed = 1;
    for (const auto& a : apps) {
      sim.addSource(std::make_unique<RegionalizedSource>(m, rm, a, seed));
      seed += 7;
    }
    sim.run();
    std::uint64_t nat = 0, fgn = 0;
    for (NodeId n = 0; n < m.numNodes(); ++n) {
      if (rm.appOf(n) != 1) continue;  // region 1's routers only
      const auto& c = sim.network().router(n).counters();
      nat += c.saGrantsNative;
      fgn += c.saGrantsForeign;
    }
    return static_cast<double>(fgn) / static_cast<double>(nat + fgn);
  };
  EXPECT_GE(foreignShare(schemeRaRair()), foreignShare(schemeRoRr()) * 0.95);
}

}  // namespace
}  // namespace rair
