#include "campaign/json.h"

#include <gtest/gtest.h>

namespace rair::campaign {
namespace {

TEST(Json, DumpsScalars) {
  EXPECT_EQ(JsonValue().dump(), "null");
  EXPECT_EQ(JsonValue(true).dump(), "true");
  EXPECT_EQ(JsonValue(false).dump(), "false");
  EXPECT_EQ(JsonValue(42).dump(), "42");
  EXPECT_EQ(JsonValue(1.5).dump(), "1.5");
  EXPECT_EQ(JsonValue("hi").dump(), "\"hi\"");
}

TEST(Json, EscapesStrings) {
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\t"), "a\\nb\\t");
  EXPECT_EQ(jsonEscape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(Json, ObjectKeepsInsertionOrder) {
  JsonValue o{JsonValue::Object{}};
  o.set("b", JsonValue(1));
  o.set("a", JsonValue(2));
  EXPECT_EQ(o.dump(), "{\"b\":1,\"a\":2}");
}

TEST(Json, ParsesNested) {
  const auto v = JsonValue::parse(
      R"({"name":"x","nums":[1,2.5,-3e2],"sub":{"ok":true,"n":null}})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->find("name")->asString(), "x");
  const auto& nums = v->find("nums")->asArray();
  ASSERT_EQ(nums.size(), 3u);
  EXPECT_DOUBLE_EQ(nums[1].asNumber(), 2.5);
  EXPECT_DOUBLE_EQ(nums[2].asNumber(), -300.0);
  EXPECT_TRUE(v->find("sub")->find("ok")->asBool());
  EXPECT_TRUE(v->find("sub")->find("n")->isNull());
  EXPECT_EQ(v->find("missing"), nullptr);
}

TEST(Json, ParsesEscapesAndUnicode) {
  const auto v = JsonValue::parse(R"("a\"b\\c\ndAé")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->asString(), "a\"b\\c\ndA\xc3\xa9");
}

TEST(Json, RoundTripsDump) {
  const std::string text =
      R"({"k":"v","arr":[1,true,null,"s"],"num":0.125})";
  const auto v = JsonValue::parse(text);
  ASSERT_TRUE(v.has_value());
  const auto again = JsonValue::parse(v->dump());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(v->dump(), again->dump());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_FALSE(JsonValue::parse("").has_value());
  EXPECT_FALSE(JsonValue::parse("{").has_value());
  EXPECT_FALSE(JsonValue::parse("{\"a\":}").has_value());
  EXPECT_FALSE(JsonValue::parse("[1,]").has_value());
  EXPECT_FALSE(JsonValue::parse("\"unterminated").has_value());
  EXPECT_FALSE(JsonValue::parse("{} trailing").has_value());
  EXPECT_FALSE(JsonValue::parse("nul").has_value());
  EXPECT_FALSE(JsonValue::parse("--3").has_value());
}

TEST(Json, DoubleFormattingIsDeterministic) {
  // The determinism guarantee of campaign records rests on stable double
  // formatting: same value -> same bytes.
  EXPECT_EQ(formatJsonDouble(41.25), formatJsonDouble(41.25));
  EXPECT_EQ(formatJsonDouble(1.0 / 3.0), formatJsonDouble(1.0 / 3.0));
  // And round-trips exactly through the parser (17 significant digits).
  const double v = 0.1234567890123456789;
  const auto parsed = JsonValue::parse(formatJsonDouble(v));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->asNumber(), v);
}

}  // namespace
}  // namespace rair::campaign
